#include "storage/csr.h"

#include <algorithm>

namespace gsi {

std::unique_ptr<DeviceCsr> DeviceCsr::Build(gpusim::Device& dev,
                                            const Graph& g) {
  auto csr = std::unique_ptr<DeviceCsr>(new DeviceCsr());
  size_t n = g.num_vertices();
  std::vector<uint64_t> offsets(n + 1, 0);
  std::vector<VertexId> col;
  std::vector<Label> val;
  col.reserve(2 * g.num_edges());
  val.reserve(2 * g.num_edges());
  for (VertexId v = 0; v < n; ++v) {
    // A generic CSR keeps neighbors sorted by id (labels interleaved).
    std::vector<Neighbor> nbrs(g.neighbors(v).begin(), g.neighbors(v).end());
    std::sort(nbrs.begin(), nbrs.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return std::pair(a.v, a.elabel) < std::pair(b.v, b.elabel);
              });
    for (const Neighbor& nb : nbrs) {
      col.push_back(nb.v);
      val.push_back(nb.elabel);
    }
    offsets[v + 1] = col.size();
  }
  csr->row_offsets_ = dev.Upload(std::move(offsets));
  csr->column_index_ = dev.Upload(std::move(col));
  csr->edge_value_ = dev.Upload(std::move(val));
  return csr;
}

size_t DeviceCsr::Extract(gpusim::Warp& w, VertexId v, Label l,
                          std::vector<VertexId>& out) const {
  // One transaction to fetch [offset, next offset).
  std::span<const uint64_t> off = w.LoadRange(row_offsets_, v, 2);
  size_t begin = off[0];
  size_t count = off[1] - off[0];
  if (count == 0) return 0;
  // Scan the full neighbor list *and* the edge-value layer, testing labels.
  std::span<const VertexId> nbrs = w.LoadRange(column_index_, begin, count);
  std::span<const Label> labels = w.LoadRange(edge_value_, begin, count);
  w.Alu(count);
  size_t added = 0;
  for (size_t i = 0; i < count; ++i) {
    if (labels[i] == l) {
      out.push_back(nbrs[i]);
      ++added;
    }
  }
  return added;
}

size_t DeviceCsr::NeighborCountUpperBound(gpusim::Warp& w, VertexId v,
                                          Label l) const {
  (void)l;
  // CSR cannot bound |N(v, l)| without scanning; the cheap bound is the
  // full degree, read with one transaction.
  std::span<const uint64_t> off = w.LoadRange(row_offsets_, v, 2);
  return off[1] - off[0];
}

size_t DeviceCsr::ExtractSlice(gpusim::Warp& w, VertexId v, Label l,
                               size_t begin, size_t end,
                               std::vector<VertexId>& out) const {
  std::span<const uint64_t> off = w.LoadRange(row_offsets_, v, 2);
  size_t base = off[0];
  size_t deg = off[1] - off[0];
  end = std::min(end, deg);
  if (begin >= end) return 0;
  size_t count = end - begin;
  std::span<const VertexId> nbrs =
      w.LoadRange(column_index_, base + begin, count);
  std::span<const Label> labels = w.LoadRange(edge_value_, base + begin,
                                              count);
  w.Alu(count);
  size_t added = 0;
  for (size_t i = 0; i < count; ++i) {
    if (labels[i] == l) {
      out.push_back(nbrs[i]);
      ++added;
    }
  }
  return added;
}

size_t DeviceCsr::ExtractValueRange(gpusim::Warp& w, VertexId v, Label l,
                                    VertexId lo, VertexId hi,
                                    std::vector<VertexId>& out) const {
  // CSR has no per-label index: bounded reads degrade to a full scan.
  std::vector<VertexId> all;
  Extract(w, v, l, all);
  size_t added = 0;
  for (VertexId x : all) {
    if (x >= lo && x <= hi) {
      out.push_back(x);
      ++added;
    }
  }
  return added;
}

uint64_t DeviceCsr::device_bytes() const {
  return row_offsets_.size() * sizeof(uint64_t) +
         column_index_.size() * sizeof(VertexId) +
         edge_value_.size() * sizeof(Label);
}

}  // namespace gsi
