#ifndef GSI_STORAGE_SIGNATURE_TABLE_H_
#define GSI_STORAGE_SIGNATURE_TABLE_H_

#include <cstdint>
#include <span>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "graph/graph.h"
#include "storage/signature.h"

namespace gsi {

/// Device-resident table of all data-vertex signatures (Figure 8b).
///
/// Layout matters (Figures 8c/8d): in the filter kernel every lane reads the
/// same word index of 32 *consecutive vertices*' signatures. Row-major
/// places those 64B (a full signature) apart — uncoalesced; column-major
/// places them adjacent — one 128B transaction per warp. The benches expose
/// both to reproduce the paper's layout argument.
class SignatureTable {
 public:
  enum class Layout { kRowMajor, kColumnMajor };

  /// Empty table; Build() produces usable instances.
  SignatureTable() = default;

  /// Encodes all vertices of g offline and uploads the table.
  static SignatureTable Build(gpusim::Device& dev, const Graph& g, int nbits,
                              Layout layout = Layout::kColumnMajor);

  /// One *device partition's* share: row i holds the signature of global
  /// vertex vertices[i] (signatures are still computed over g's full
  /// adjacency — ownership splits storage, not neighborhoods). Indexing
  /// (IndexOf, WarpReadWord, WordAt) is by local row i; the caller maps
  /// local rows back to vertices[i]. The K shares of a graph sum to
  /// exactly the replicated table's bytes.
  static SignatureTable BuildSubset(gpusim::Device& dev, const Graph& g,
                                    std::span<const VertexId> vertices,
                                    int nbits,
                                    Layout layout = Layout::kColumnMajor);

  /// Element index of (vertex, word) under the table's layout.
  uint64_t IndexOf(VertexId v, int word) const {
    if (layout_ == Layout::kColumnMajor) {
      return static_cast<uint64_t>(word) * num_vertices_ + v;
    }
    return static_cast<uint64_t>(v) * words_per_sig_ + word;
  }

  /// Warp read of word `word` for 32 consecutive vertices starting at v0
  /// (lane k handles vertex v0+k). Charges coalesced transactions per the
  /// layout. Returns values via `out` (up to 32 entries).
  void WarpReadWord(gpusim::Warp& w, VertexId v0, size_t lanes, int word,
                    uint32_t* out) const;

  int nbits() const { return nbits_; }
  int words_per_sig() const { return words_per_sig_; }
  size_t num_vertices() const { return num_vertices_; }
  Layout layout() const { return layout_; }
  uint64_t device_bytes() const { return data_.size() * sizeof(uint32_t); }

  /// Host access for tests.
  uint32_t WordAt(VertexId v, int word) const {
    return data_[IndexOf(v, word)];
  }

 private:
  gpusim::DeviceBuffer<uint32_t> data_;
  size_t num_vertices_ = 0;
  int nbits_ = kMaxSignatureBits;
  int words_per_sig_ = kSignatureWords;
  Layout layout_ = Layout::kColumnMajor;
};

}  // namespace gsi

#endif  // GSI_STORAGE_SIGNATURE_TABLE_H_
