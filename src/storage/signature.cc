#include "storage/signature.h"

#include "util/check.h"

namespace gsi {
namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

uint32_t SignatureGroupOf(Label edge_label, Label neighbor_label,
                          int nbits) {
  uint32_t num_groups = static_cast<uint32_t>((nbits - kVertexLabelBits) / 2);
  uint64_t key = (static_cast<uint64_t>(edge_label) << 32) | neighbor_label;
  return static_cast<uint32_t>(Mix64(key) % num_groups);
}

Signature Signature::Encode(const Graph& g, VertexId v, int nbits) {
  GSI_CHECK(nbits > kVertexLabelBits && nbits <= kMaxSignatureBits &&
            nbits % 32 == 0);
  Signature s;
  s.words_[0] = g.vertex_label(v);
  for (const Neighbor& n : g.neighbors(v)) {
    uint32_t group = SignatureGroupOf(n.elabel, g.vertex_label(n.v), nbits);
    // Two bits per group, 16 groups per word, starting at word 1.
    int word = 1 + static_cast<int>(group / 16);
    int shift = static_cast<int>(group % 16) * 2;
    uint32_t state = (s.words_[word] >> shift) & 0x3u;
    // 00 -> 01 (single pair), 01/11 -> 11 (more than one pair).
    uint32_t next = (state == 0) ? 0x1u : 0x3u;
    s.words_[word] =
        (s.words_[word] & ~(0x3u << shift)) | (next << shift);
  }
  return s;
}

bool Signature::Covers(const Signature& query) const {
  if (words_[0] != query.words_[0]) return false;
  for (int i = 1; i < kSignatureWords; ++i) {
    if ((words_[i] & query.words_[i]) != query.words_[i]) return false;
  }
  return true;
}

}  // namespace gsi
