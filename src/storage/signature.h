#ifndef GSI_STORAGE_SIGNATURE_H_
#define GSI_STORAGE_SIGNATURE_H_

#include <array>
#include <cstdint>

#include "graph/graph.h"
#include "util/common.h"

namespace gsi {

/// Maximum signature width in bits (the paper's N=512 default; Section
/// VII-B shows the table is several GB beyond that).
inline constexpr int kMaxSignatureBits = 512;
/// Bits reserved for the raw vertex label (K=32; the label is stored
/// verbatim so the first filter iteration is an exact label comparison).
inline constexpr int kVertexLabelBits = 32;
inline constexpr int kSignatureWords = kMaxSignatureBits / 32;

/// Length-N bitvector signature S(v) of a vertex's neighbourhood structure
/// (Section III-A):
///  - word 0: the raw vertex label (K = 32 bits);
///  - remaining (N-32)/2 two-bit groups, one state per hashed
///    (edge label, neighbour label) pair: 00 none, 01 exactly one, 11 many.
///
/// If S(v) & S(u) != S(u) then v cannot match u. Narrower widths (Table V's
/// N sweep) zero the unused tail words.
class Signature {
 public:
  Signature() { words_.fill(0); }

  /// Encodes vertex v of g using an nbits-wide signature (32 < nbits <= 512,
  /// divisible by 32).
  static Signature Encode(const Graph& g, VertexId v, int nbits);

  /// True iff this (data-vertex) signature is compatible with the query
  /// signature: equal vertex label and two-bit groups that dominate the
  /// query's ("bitwise AND" test of Section III-A).
  bool Covers(const Signature& query) const;

  uint32_t word(int i) const { return words_[i]; }
  void set_word(int i, uint32_t w) { words_[i] = w; }

  Label vertex_label() const { return words_[0]; }

  /// Number of 32-bit words a width-nbits signature occupies.
  static int WordsFor(int nbits) { return nbits / 32; }

  friend bool operator==(const Signature&, const Signature&) = default;

 private:
  std::array<uint32_t, kSignatureWords> words_;
};

/// The hash group index in [0, (nbits-32)/2) for an (edge label, neighbour
/// label) pair. Exposed for tests.
uint32_t SignatureGroupOf(Label edge_label, Label neighbor_label, int nbits);

}  // namespace gsi

#endif  // GSI_STORAGE_SIGNATURE_H_
