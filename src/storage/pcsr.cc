#include "storage/pcsr.h"

#include <algorithm>
#include <deque>

#include "storage/list_search.h"
#include "util/check.h"

namespace gsi {
namespace {

/// One-to-one multiplicative hash onto [0, num_groups).
size_t HashVertex(VertexId v, size_t num_groups) {
  return (static_cast<uint64_t>(v) * 0x9E3779B1ull) % num_groups;
}

}  // namespace

size_t PcsrPartition::GroupOf(VertexId v) const {
  return HashVertex(v, num_groups_);
}

Result<PcsrPartition> PcsrPartition::Build(gpusim::Device& dev,
                                           const LabelPartition& part,
                                           int gpn) {
  if (gpn < 2 || gpn > 16) {
    return Status::InvalidArgument("GPN must be in [2, 16]");
  }
  PcsrPartition p;
  p.gpn_ = gpn;
  const size_t num_keys = part.vertices.size();
  p.num_groups_ = num_keys;
  if (num_keys == 0) {
    p.groups_ = dev.Alloc<PcsrPair>(0);
    p.ci_ = dev.Alloc<VertexId>(0);
    return p;
  }

  const size_t keys_per_group = static_cast<size_t>(gpn) - 1;

  // --- Algorithm 1, Lines 3-4: hash every key to its group. Buckets hold
  // indices into part.vertices so degrees stay accessible.
  std::vector<std::vector<uint32_t>> bucket(num_keys);
  for (uint32_t i = 0; i < num_keys; ++i) {
    bucket[HashVertex(part.vertices[i], num_keys)].push_back(i);
  }

  // --- Lines 5-8: resolve overflow via chains of empty groups (Claim 1
  // guarantees enough of them).
  std::deque<size_t> empties;
  for (size_t g = 0; g < num_keys; ++g) {
    if (bucket[g].empty()) empties.push_back(g);
  }
  // keys_of[g]: keys finally stored in group g; next_gid[g]: chain link.
  std::vector<std::vector<uint32_t>> keys_of(num_keys);
  std::vector<VertexId> next_gid(num_keys, kInvalidVertex);
  size_t max_chain = 1;
  for (size_t g = 0; g < num_keys; ++g) {
    if (bucket[g].empty()) continue;
    size_t chain_len = 1;
    size_t cur = g;
    for (size_t taken = 0; taken < bucket[g].size();
         taken += keys_per_group) {
      if (taken > 0) {
        // Need one more group for this chunk.
        GSI_CHECK_MSG(!empties.empty(), "Claim 1 violated: no empty group");
        size_t next = empties.front();
        empties.pop_front();
        next_gid[cur] = static_cast<VertexId>(next);
        cur = next;
        ++chain_len;
      }
      size_t end = std::min(bucket[g].size(), taken + keys_per_group);
      keys_of[cur].assign(bucket[g].begin() + taken, bucket[g].begin() + end);
    }
    max_chain = std::max(max_chain, chain_len);
  }
  p.max_chain_length_ = max_chain;

  // --- Lines 9-13: lay out offsets and the column index in group-scan
  // order; each group's END is the end offset of its last vertex.
  std::vector<PcsrPair> groups(num_keys * gpn);
  std::vector<VertexId> ci(part.neighbors.size());
  size_t pos = 0;
  for (size_t g = 0; g < num_keys; ++g) {
    PcsrPair* slot = &groups[g * gpn];
    GSI_CHECK(keys_of[g].size() <= keys_per_group);
    for (size_t j = 0; j < keys_of[g].size(); ++j) {
      uint32_t key_index = keys_of[g][j];
      VertexId v = part.vertices[key_index];
      size_t deg = part.offsets[key_index + 1] - part.offsets[key_index];
      slot[j] = PcsrPair{v, static_cast<uint32_t>(pos)};
      std::copy(part.neighbors.begin() +
                    static_cast<ptrdiff_t>(part.offsets[key_index]),
                part.neighbors.begin() +
                    static_cast<ptrdiff_t>(part.offsets[key_index + 1]),
                ci.begin() + static_cast<ptrdiff_t>(pos));
      pos += deg;
    }
    // Unused middle slots stay {kInvalidVertex, 0}; the last slot is the
    // (GID, END) overflow flag.
    slot[gpn - 1] = PcsrPair{next_gid[g], static_cast<uint32_t>(pos)};
  }
  GSI_CHECK(pos == ci.size());

  p.groups_ = dev.Upload(std::move(groups));
  p.ci_ = dev.Upload(std::move(ci));
  return p;
}

PcsrPartition::LookupInfo PcsrPartition::HostLookup(VertexId v) const {
  LookupInfo info;
  if (num_groups_ == 0) return info;
  size_t g = GroupOf(v);
  while (true) {
    ++info.groups_probed;
    const PcsrPair* slot = groups_.data() + g * gpn_;
    for (int j = 0; j + 1 < gpn_; ++j) {
      if (slot[j].v == v) {
        info.found = true;
        info.begin = slot[j].ov;
        uint32_t end = (j + 2 < gpn_ && slot[j + 1].v != kInvalidVertex)
                           ? slot[j + 1].ov
                           : slot[gpn_ - 1].ov;  // END
        info.count = end - slot[j].ov;
        return info;
      }
    }
    VertexId gid = slot[gpn_ - 1].v;
    if (gid == kInvalidVertex) return info;  // chain exhausted
    g = gid;
  }
}

PcsrPartition::LookupInfo PcsrPartition::Locate(gpusim::Warp& w,
                                                VertexId v) const {
  LookupInfo info;
  if (num_groups_ == 0) return info;
  size_t g = GroupOf(v);
  w.Alu(1);  // hash
  while (true) {
    // Read the whole group with one transaction and probe all pairs with
    // the warp's lanes (steps 2-3 of the lookup procedure, Section IV).
    ++info.groups_probed;
    std::span<const PcsrPair> slot =
        w.LoadRange(groups_, g * gpn_, static_cast<size_t>(gpn_));
    w.Alu(static_cast<uint64_t>(gpn_));
    for (int j = 0; j + 1 < gpn_; ++j) {
      if (slot[j].v == v) {
        uint32_t end = (j + 2 < gpn_ && slot[j + 1].v != kInvalidVertex)
                           ? slot[j + 1].ov
                           : slot[gpn_ - 1].ov;  // END
        info.found = true;
        info.begin = slot[j].ov;
        info.count = end - slot[j].ov;
        return info;
      }
    }
    VertexId gid = slot[gpn_ - 1].v;
    if (gid == kInvalidVertex) return info;
    g = gid;
  }
}

size_t PcsrPartition::Extract(gpusim::Warp& w, VertexId v,
                              std::vector<VertexId>& out) const {
  LookupInfo info = Locate(w, v);
  if (!info.found || info.count == 0) return 0;
  std::span<const VertexId> nbrs = w.LoadRange(ci_, info.begin, info.count);
  out.insert(out.end(), nbrs.begin(), nbrs.end());
  return info.count;
}

size_t PcsrPartition::NeighborCount(gpusim::Warp& w, VertexId v) const {
  LookupInfo info = Locate(w, v);
  return info.found ? info.count : 0;
}

size_t PcsrPartition::ExtractSlice(gpusim::Warp& w, VertexId v, size_t begin,
                                   size_t end,
                                   std::vector<VertexId>& out) const {
  LookupInfo info = Locate(w, v);
  if (!info.found) return 0;
  end = std::min(end, info.count);
  if (begin >= end) return 0;
  std::span<const VertexId> nbrs =
      w.LoadRange(ci_, info.begin + begin, end - begin);
  out.insert(out.end(), nbrs.begin(), nbrs.end());
  return end - begin;
}

size_t PcsrPartition::ExtractValueRange(gpusim::Warp& w, VertexId v,
                                        VertexId lo, VertexId hi,
                                        std::vector<VertexId>& out) const {
  LookupInfo info = Locate(w, v);
  if (!info.found || info.count == 0) return 0;
  size_t b = LowerBoundCharged(w, ci_, info.begin, info.begin + info.count,
                               lo);
  size_t e = UpperBoundCharged(w, ci_, b, info.begin + info.count, hi);
  if (b >= e) return 0;
  std::span<const VertexId> nbrs = w.LoadRange(ci_, b, e - b);
  out.insert(out.end(), nbrs.begin(), nbrs.end());
  return e - b;
}

uint64_t PcsrPartition::device_bytes() const {
  return groups_.size() * sizeof(PcsrPair) + ci_.size() * sizeof(VertexId);
}

std::unique_ptr<PcsrStore> PcsrStore::Build(gpusim::Device& dev,
                                            const Graph& g, int gpn) {
  auto store = std::unique_ptr<PcsrStore>(new PcsrStore());
  for (Label l : g.edge_labels()) {
    LabelPartition part = MakePartition(g, l);
    Result<PcsrPartition> p = PcsrPartition::Build(dev, part, gpn);
    GSI_CHECK_MSG(p.ok(), "PCSR build failed");
    store->label_index_[l] = store->per_label_.size();
    store->per_label_.push_back(std::move(p.value()));
  }
  return store;
}

std::unique_ptr<PcsrStore> PcsrStore::BuildForVertices(
    gpusim::Device& dev, const Graph& g, std::span<const uint8_t> keep,
    int gpn) {
  GSI_CHECK(keep.size() == g.num_vertices());
  auto store = std::unique_ptr<PcsrStore>(new PcsrStore());
  for (Label l : g.edge_labels()) {
    LabelPartition part = MakePartitionForVertices(g, l, keep);
    Result<PcsrPartition> p = PcsrPartition::Build(dev, part, gpn);
    GSI_CHECK_MSG(p.ok(), "partitioned PCSR build failed");
    store->label_index_[l] = store->per_label_.size();
    store->per_label_.push_back(std::move(p.value()));
  }
  return store;
}

const PcsrPartition* PcsrStore::partition(Label l) const {
  auto it = label_index_.find(l);
  if (it == label_index_.end()) return nullptr;
  return &per_label_[it->second];
}

size_t PcsrStore::Extract(gpusim::Warp& w, VertexId v, Label l,
                          std::vector<VertexId>& out) const {
  const PcsrPartition* p = partition(l);
  if (p == nullptr) return 0;
  return p->Extract(w, v, out);
}

size_t PcsrStore::NeighborCountUpperBound(gpusim::Warp& w, VertexId v,
                                          Label l) const {
  const PcsrPartition* p = partition(l);
  if (p == nullptr) return 0;
  return p->NeighborCount(w, v);
}

size_t PcsrStore::ExtractSlice(gpusim::Warp& w, VertexId v, Label l,
                               size_t begin, size_t end,
                               std::vector<VertexId>& out) const {
  const PcsrPartition* p = partition(l);
  if (p == nullptr) return 0;
  return p->ExtractSlice(w, v, begin, end, out);
}

size_t PcsrStore::ExtractValueRange(gpusim::Warp& w, VertexId v, Label l,
                                    VertexId lo, VertexId hi,
                                    std::vector<VertexId>& out) const {
  const PcsrPartition* p = partition(l);
  if (p == nullptr) return 0;
  return p->ExtractValueRange(w, v, lo, hi, out);
}

uint64_t PcsrStore::device_bytes() const {
  uint64_t total = 0;
  for (const PcsrPartition& p : per_label_) total += p.device_bytes();
  return total;
}

size_t PcsrStore::max_chain_length() const {
  size_t m = 0;
  for (const PcsrPartition& p : per_label_) {
    m = std::max(m, p.max_chain_length());
  }
  return m;
}

}  // namespace gsi
