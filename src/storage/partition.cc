#include "storage/partition.h"

namespace gsi {

LabelPartition MakePartition(const Graph& g, Label l) {
  LabelPartition p;
  p.label = l;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::span<const Neighbor> nbrs = g.NeighborsWithLabel(v, l);
    if (nbrs.empty()) continue;
    p.vertices.push_back(v);
    p.offsets.push_back(p.neighbors.size());
    // Graph adjacency is sorted by (label, id), so this slice is ascending.
    for (const Neighbor& n : nbrs) p.neighbors.push_back(n.v);
  }
  p.offsets.push_back(p.neighbors.size());
  return p;
}

LabelPartition MakePartitionForVertices(const Graph& g, Label l,
                                        std::span<const uint8_t> keep) {
  LabelPartition p;
  p.label = l;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (keep[v] == 0) continue;
    std::span<const Neighbor> nbrs = g.NeighborsWithLabel(v, l);
    if (nbrs.empty()) continue;
    p.vertices.push_back(v);
    p.offsets.push_back(p.neighbors.size());
    for (const Neighbor& n : nbrs) p.neighbors.push_back(n.v);
  }
  p.offsets.push_back(p.neighbors.size());
  return p;
}

std::vector<LabelPartition> PartitionByEdgeLabel(const Graph& g) {
  std::vector<LabelPartition> parts;
  parts.reserve(g.num_edge_labels());
  for (Label l : g.edge_labels()) parts.push_back(MakePartition(g, l));
  return parts;
}

}  // namespace gsi
