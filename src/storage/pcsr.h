#ifndef GSI_STORAGE_PCSR_H_
#define GSI_STORAGE_PCSR_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "graph/graph.h"
#include "storage/neighbor_store.h"
#include "storage/partition.h"
#include "util/status.h"

namespace gsi {

/// One (vertex, offset) pair in a PCSR group (Definition 4). In the last
/// slot of a group, `v` is reinterpreted as GID (next group in the overflow
/// chain, kInvalidVertex for -1) and `ov` as END (end offset of the last
/// vertex listed in this group).
struct PcsrPair {
  VertexId v = kInvalidVertex;
  uint32_t ov = 0;
};
static_assert(sizeof(PcsrPair) == 8, "group layout requires 8B pairs");

/// PCSR for a single edge label l-partitioned graph (Definition 4):
/// a hashed row-offset layer of fixed-size groups plus the column index.
/// With GPN=16, one group is exactly one 128B transaction.
class PcsrPartition {
 public:
  /// Builds PCSR per Algorithm 1. `gpn` is the group size in pairs
  /// (2 <= gpn <= 16; the paper uses 16 to fill a transaction).
  static Result<PcsrPartition> Build(gpusim::Device& dev,
                                     const LabelPartition& part, int gpn = 16);

  /// Extracts N(v, l): hash to a group, stream groups along the overflow
  /// chain until v is found or the chain ends. Charges one 128B load per
  /// group visited plus the column-index range read.
  size_t Extract(gpusim::Warp& w, VertexId v,
                 std::vector<VertexId>& out) const;

  /// |N(v, l)| (exact — found in the group pair, no column read needed).
  size_t NeighborCount(gpusim::Warp& w, VertexId v) const;

  /// Extracts positions [begin, end) of N(v, l).
  size_t ExtractSlice(gpusim::Warp& w, VertexId v, size_t begin, size_t end,
                      std::vector<VertexId>& out) const;

  /// Extracts the values of N(v, l) within [lo, hi] (binary search in ci).
  size_t ExtractValueRange(gpusim::Warp& w, VertexId v, VertexId lo,
                           VertexId hi, std::vector<VertexId>& out) const;

  /// Host-side lookup for tests: returns (found, begin, count, groups
  /// probed).
  struct LookupInfo {
    bool found = false;
    size_t begin = 0;
    size_t count = 0;
    size_t groups_probed = 0;
  };
  LookupInfo HostLookup(VertexId v) const;

  int gpn() const { return gpn_; }
  size_t num_groups() const { return num_groups_; }
  /// Longest overflow chain created at build time (paper: <= 3 groups in
  /// theory for GPN=16; <= 1 extra group observed in all experiments).
  size_t max_chain_length() const { return max_chain_length_; }

  uint64_t device_bytes() const;

 private:
  PcsrPartition() = default;

  size_t GroupOf(VertexId v) const;

  /// Charged group-chain probe; returns (found, begin, count).
  LookupInfo Locate(gpusim::Warp& w, VertexId v) const;

  gpusim::DeviceBuffer<PcsrPair> groups_;   // num_groups_ * gpn_
  gpusim::DeviceBuffer<VertexId> ci_;       // column index
  size_t num_groups_ = 0;
  int gpn_ = 16;
  size_t max_chain_length_ = 1;
};

/// PCSR store for a whole graph: one PcsrPartition per edge label
/// (Section IV; total space O(|E(G)|)).
class PcsrStore final : public NeighborStore {
 public:
  static std::unique_ptr<PcsrStore> Build(gpusim::Device& dev, const Graph& g,
                                          int gpn = 16);

  /// Builds the PCSR share of one *device partition*: only the adjacency
  /// rows of vertices v with keep[v] != 0 are stored (neighbor ids stay
  /// global). Hash-layer groups are sized to the kept key count, so the
  /// K shares of a graph sum to exactly the bytes of the replicated store:
  /// per-device residency really is ~1/K. Lookups of non-kept vertices
  /// report "not found" (count 0) — the partitioned execution path never
  /// issues them locally; it routes them to the owner as remote probes
  /// (gsi/partition.h). `keep` must have one entry per vertex of g.
  static std::unique_ptr<PcsrStore> BuildForVertices(
      gpusim::Device& dev, const Graph& g, std::span<const uint8_t> keep,
      int gpn = 16);

  size_t Extract(gpusim::Warp& w, VertexId v, Label l,
                 std::vector<VertexId>& out) const override;

  size_t NeighborCountUpperBound(gpusim::Warp& w, VertexId v,
                                 Label l) const override;

  size_t ExtractSlice(gpusim::Warp& w, VertexId v, Label l, size_t begin,
                      size_t end, std::vector<VertexId>& out) const override;

  size_t ExtractValueRange(gpusim::Warp& w, VertexId v, Label l, VertexId lo,
                           VertexId hi,
                           std::vector<VertexId>& out) const override;

  uint64_t device_bytes() const override;
  std::string name() const override { return "PCSR"; }

  /// Max overflow-chain length across all partitions.
  size_t max_chain_length() const;

  const PcsrPartition* partition(Label l) const;

 private:
  PcsrStore() = default;

  std::unordered_map<Label, size_t> label_index_;
  std::vector<PcsrPartition> per_label_;
};

}  // namespace gsi

#endif  // GSI_STORAGE_PCSR_H_
