#ifndef GSI_STORAGE_COMPRESSED_REP_H_
#define GSI_STORAGE_COMPRESSED_REP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "graph/graph.h"
#include "storage/neighbor_store.h"
#include "storage/partition.h"

namespace gsi {

/// "Compressed Representation" (Figure 11b): per-label CSR with an extra
/// sorted "vertex ID" layer; lookup binary-searches that layer, costing
/// ~log2 |V(G, l)| + 2 memory transactions — space-optimal but slow.
class CompressedRep final : public NeighborStore {
 public:
  static std::unique_ptr<CompressedRep> Build(gpusim::Device& dev,
                                              const Graph& g);

  size_t Extract(gpusim::Warp& w, VertexId v, Label l,
                 std::vector<VertexId>& out) const override;

  size_t NeighborCountUpperBound(gpusim::Warp& w, VertexId v,
                                 Label l) const override;

  size_t ExtractSlice(gpusim::Warp& w, VertexId v, Label l, size_t begin,
                      size_t end, std::vector<VertexId>& out) const override;

  size_t ExtractValueRange(gpusim::Warp& w, VertexId v, Label l, VertexId lo,
                           VertexId hi,
                           std::vector<VertexId>& out) const override;

  uint64_t device_bytes() const override;
  std::string name() const override { return "CompressedRep"; }

 private:
  struct PerLabel {
    gpusim::DeviceBuffer<VertexId> vertex_ids;   // sorted, |V(D)|
    gpusim::DeviceBuffer<uint64_t> row_offsets;  // |V(D)|+1
    gpusim::DeviceBuffer<VertexId> column_index;
  };

  CompressedRep() = default;

  const PerLabel* Find(Label l) const;
  /// Binary search with per-probe transaction charging. Returns index in
  /// vertex_ids or SIZE_MAX.
  static size_t SearchVertex(gpusim::Warp& w, const PerLabel& pl, VertexId v);

  std::unordered_map<Label, size_t> label_index_;
  std::vector<PerLabel> per_label_;
};

}  // namespace gsi

#endif  // GSI_STORAGE_COMPRESSED_REP_H_
