#ifndef GSI_STORAGE_NEIGHBOR_STORE_H_
#define GSI_STORAGE_NEIGHBOR_STORE_H_

#include <string>
#include <vector>

#include "gpusim/launch.h"
#include "util/common.h"

namespace gsi {

/// Device-resident graph storage abstraction: extraction of N(v, l) by one
/// warp, with all memory traffic charged to the warp. Implementations are
/// the four structures compared in Table II:
///   CSR  — O(|N(v)|) time, O(|E|) space
///   BR   — O(1) time, O(|E| + |LE|x|V|) space
///   CR   — O(log |V(G,l)|) time, O(|E|) space
///   PCSR — O(1) time, O(|E|) space
class NeighborStore {
 public:
  virtual ~NeighborStore() = default;

  /// Appends N(v, l) (ascending vertex ids) to `out`; returns the count.
  /// Charges every global-memory transaction to `w`.
  virtual size_t Extract(gpusim::Warp& w, VertexId v, Label l,
                         std::vector<VertexId>& out) const = 0;

  /// Upper bound on |N(v, l)| obtainable without reading the neighbor list
  /// itself (used by Algorithm 4 to size GBA buffers). Exact for the
  /// label-partitioned structures; the full degree for CSR. Charges lookup
  /// transactions to `w`.
  virtual size_t NeighborCountUpperBound(gpusim::Warp& w, VertexId v,
                                         Label l) const = 0;

  /// Extracts the position subrange [begin, end) of the upper-bound list
  /// whose size NeighborCountUpperBound reports (the unit the load-balance
  /// scheme chunks by). For label-partitioned stores the upper-bound list
  /// is N(v, l) itself; for CSR it is the full adjacency filtered to l on
  /// the fly. The union of all slices equals Extract's output.
  virtual size_t ExtractSlice(gpusim::Warp& w, VertexId v, Label l,
                              size_t begin, size_t end,
                              std::vector<VertexId>& out) const = 0;

  /// Appends the elements of N(v, l) with values in [lo, hi] — the bounded
  /// read used by chunked intersections so that parallelizing a heavy row
  /// does not re-read whole lists. Returns the count.
  virtual size_t ExtractValueRange(gpusim::Warp& w, VertexId v, Label l,
                                   VertexId lo, VertexId hi,
                                   std::vector<VertexId>& out) const = 0;

  /// Total simulated device memory consumed by the structure.
  virtual uint64_t device_bytes() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace gsi

#endif  // GSI_STORAGE_NEIGHBOR_STORE_H_
