#include "storage/compressed_rep.h"

#include "storage/list_search.h"

namespace gsi {

std::unique_ptr<CompressedRep> CompressedRep::Build(gpusim::Device& dev,
                                                    const Graph& g) {
  auto rep = std::unique_ptr<CompressedRep>(new CompressedRep());
  for (Label l : g.edge_labels()) {
    LabelPartition part = MakePartition(g, l);
    PerLabel pl;
    pl.vertex_ids = dev.Upload(std::move(part.vertices));
    pl.row_offsets = dev.Upload(std::move(part.offsets));
    pl.column_index = dev.Upload(std::move(part.neighbors));
    rep->label_index_[l] = rep->per_label_.size();
    rep->per_label_.push_back(std::move(pl));
  }
  return rep;
}

const CompressedRep::PerLabel* CompressedRep::Find(Label l) const {
  auto it = label_index_.find(l);
  if (it == label_index_.end()) return nullptr;
  return &per_label_[it->second];
}

size_t CompressedRep::SearchVertex(gpusim::Warp& w, const PerLabel& pl,
                                   VertexId v) {
  size_t lo = 0;
  size_t hi = pl.vertex_ids.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    VertexId probe = w.Load(pl.vertex_ids, mid);  // one transaction each
    w.Alu(1);
    if (probe == v) return mid;
    if (probe < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return SIZE_MAX;
}

size_t CompressedRep::Extract(gpusim::Warp& w, VertexId v, Label l,
                              std::vector<VertexId>& out) const {
  const PerLabel* pl = Find(l);
  if (pl == nullptr) return 0;
  size_t idx = SearchVertex(w, *pl, v);
  if (idx == SIZE_MAX) return 0;
  std::span<const uint64_t> off = w.LoadRange(pl->row_offsets, idx, 2);
  size_t count = off[1] - off[0];
  std::span<const VertexId> nbrs =
      w.LoadRange(pl->column_index, off[0], count);
  out.insert(out.end(), nbrs.begin(), nbrs.end());
  return count;
}

size_t CompressedRep::NeighborCountUpperBound(gpusim::Warp& w, VertexId v,
                                              Label l) const {
  const PerLabel* pl = Find(l);
  if (pl == nullptr) return 0;
  size_t idx = SearchVertex(w, *pl, v);
  if (idx == SIZE_MAX) return 0;
  std::span<const uint64_t> off = w.LoadRange(pl->row_offsets, idx, 2);
  return off[1] - off[0];
}

size_t CompressedRep::ExtractSlice(gpusim::Warp& w, VertexId v, Label l,
                                   size_t begin, size_t end,
                                   std::vector<VertexId>& out) const {
  const PerLabel* pl = Find(l);
  if (pl == nullptr) return 0;
  size_t idx = SearchVertex(w, *pl, v);
  if (idx == SIZE_MAX) return 0;
  std::span<const uint64_t> off = w.LoadRange(pl->row_offsets, idx, 2);
  size_t count = off[1] - off[0];
  end = std::min(end, count);
  if (begin >= end) return 0;
  std::span<const VertexId> nbrs =
      w.LoadRange(pl->column_index, off[0] + begin, end - begin);
  out.insert(out.end(), nbrs.begin(), nbrs.end());
  return end - begin;
}

size_t CompressedRep::ExtractValueRange(gpusim::Warp& w, VertexId v, Label l,
                                        VertexId lo, VertexId hi,
                                        std::vector<VertexId>& out) const {
  const PerLabel* pl = Find(l);
  if (pl == nullptr) return 0;
  size_t idx = SearchVertex(w, *pl, v);
  if (idx == SIZE_MAX) return 0;
  std::span<const uint64_t> off = w.LoadRange(pl->row_offsets, idx, 2);
  if (off[0] == off[1]) return 0;
  size_t b = LowerBoundCharged(w, pl->column_index, off[0], off[1], lo);
  size_t e = UpperBoundCharged(w, pl->column_index, b, off[1], hi);
  if (b >= e) return 0;
  std::span<const VertexId> nbrs = w.LoadRange(pl->column_index, b, e - b);
  out.insert(out.end(), nbrs.begin(), nbrs.end());
  return e - b;
}

uint64_t CompressedRep::device_bytes() const {
  uint64_t total = 0;
  for (const PerLabel& pl : per_label_) {
    total += pl.vertex_ids.size() * sizeof(VertexId) +
             pl.row_offsets.size() * sizeof(uint64_t) +
             pl.column_index.size() * sizeof(VertexId);
  }
  return total;
}

}  // namespace gsi
