#ifndef GSI_STORAGE_BASIC_REP_H_
#define GSI_STORAGE_BASIC_REP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "graph/graph.h"
#include "storage/neighbor_store.h"
#include "storage/partition.h"

namespace gsi {

/// "Basic Representation" (Figure 11a): one CSR per edge label whose row
/// offset layer spans the *entire* vertex set, so lookup is O(1) by vertex
/// id, but space is O(|E| + |LE| x |V|) — unusable for graphs with many
/// edge labels (the paper could not even run it on the large datasets).
class BasicRep final : public NeighborStore {
 public:
  static std::unique_ptr<BasicRep> Build(gpusim::Device& dev, const Graph& g);

  size_t Extract(gpusim::Warp& w, VertexId v, Label l,
                 std::vector<VertexId>& out) const override;

  size_t NeighborCountUpperBound(gpusim::Warp& w, VertexId v,
                                 Label l) const override;

  size_t ExtractSlice(gpusim::Warp& w, VertexId v, Label l, size_t begin,
                      size_t end, std::vector<VertexId>& out) const override;

  size_t ExtractValueRange(gpusim::Warp& w, VertexId v, Label l, VertexId lo,
                           VertexId hi,
                           std::vector<VertexId>& out) const override;

  uint64_t device_bytes() const override;
  std::string name() const override { return "BasicRep"; }

 private:
  struct PerLabel {
    gpusim::DeviceBuffer<uint64_t> row_offsets;  // |V(G)|+1
    gpusim::DeviceBuffer<VertexId> column_index;
  };

  BasicRep() = default;

  const PerLabel* Find(Label l) const;

  std::unordered_map<Label, size_t> label_index_;
  std::vector<PerLabel> per_label_;
};

}  // namespace gsi

#endif  // GSI_STORAGE_BASIC_REP_H_
