#ifndef GSI_STORAGE_LIST_SEARCH_H_
#define GSI_STORAGE_LIST_SEARCH_H_

#include <cstddef>

#include "gpusim/device_buffer.h"
#include "gpusim/launch.h"
#include "util/common.h"

namespace gsi {

/// Binary search for the first index in buf[begin, end) with value >= x,
/// charging one global transaction per probe (how a warp-serial binary
/// search behaves on device).
inline size_t LowerBoundCharged(gpusim::Warp& w,
                                const gpusim::DeviceBuffer<VertexId>& buf,
                                size_t begin, size_t end, VertexId x) {
  size_t lo = begin;
  size_t hi = end;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    VertexId probe = w.Load(buf, mid);
    w.Alu(1);
    if (probe < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First index with value > x (upper bound), charged like above.
inline size_t UpperBoundCharged(gpusim::Warp& w,
                                const gpusim::DeviceBuffer<VertexId>& buf,
                                size_t begin, size_t end, VertexId x) {
  size_t lo = begin;
  size_t hi = end;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    VertexId probe = w.Load(buf, mid);
    w.Alu(1);
    if (probe <= x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace gsi

#endif  // GSI_STORAGE_LIST_SEARCH_H_
