#ifndef GSI_STORAGE_CSR_H_
#define GSI_STORAGE_CSR_H_

#include <memory>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "graph/graph.h"
#include "storage/neighbor_store.h"

namespace gsi {

/// Traditional 3-layer CSR over the whole graph (Figure 10): row offsets,
/// column index, edge value (label). N(v, l) extraction must scan *all*
/// neighbors of v and check each edge label — O(|N(v)|) transactions and
/// wasted lanes, the weakness PCSR fixes.
class DeviceCsr final : public NeighborStore {
 public:
  static std::unique_ptr<DeviceCsr> Build(gpusim::Device& dev,
                                          const Graph& g);

  size_t Extract(gpusim::Warp& w, VertexId v, Label l,
                 std::vector<VertexId>& out) const override;

  size_t NeighborCountUpperBound(gpusim::Warp& w, VertexId v,
                                 Label l) const override;

  size_t ExtractSlice(gpusim::Warp& w, VertexId v, Label l, size_t begin,
                      size_t end, std::vector<VertexId>& out) const override;

  size_t ExtractValueRange(gpusim::Warp& w, VertexId v, Label l, VertexId lo,
                           VertexId hi,
                           std::vector<VertexId>& out) const override;

  uint64_t device_bytes() const override;
  std::string name() const override { return "CSR"; }

  size_t num_vertices() const { return row_offsets_.size() - 1; }

 private:
  DeviceCsr() = default;

  gpusim::DeviceBuffer<uint64_t> row_offsets_;  // |V|+1
  gpusim::DeviceBuffer<VertexId> column_index_; // 2|E|, sorted per vertex
  gpusim::DeviceBuffer<Label> edge_value_;      // 2|E|
};

}  // namespace gsi

#endif  // GSI_STORAGE_CSR_H_
