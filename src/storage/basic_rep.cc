#include "storage/basic_rep.h"

#include "storage/list_search.h"

namespace gsi {

std::unique_ptr<BasicRep> BasicRep::Build(gpusim::Device& dev,
                                          const Graph& g) {
  auto rep = std::unique_ptr<BasicRep>(new BasicRep());
  size_t n = g.num_vertices();
  for (Label l : g.edge_labels()) {
    LabelPartition part = MakePartition(g, l);
    std::vector<uint64_t> offsets(n + 1, 0);
    // Fill per-vertex counts, then prefix sum. Vertices absent from the
    // partition get empty ranges.
    for (size_t i = 0; i < part.vertices.size(); ++i) {
      offsets[part.vertices[i] + 1] = part.offsets[i + 1] - part.offsets[i];
    }
    for (size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    PerLabel pl;
    pl.row_offsets = dev.Upload(std::move(offsets));
    pl.column_index = dev.Upload(std::move(part.neighbors));
    rep->label_index_[l] = rep->per_label_.size();
    rep->per_label_.push_back(std::move(pl));
  }
  return rep;
}

const BasicRep::PerLabel* BasicRep::Find(Label l) const {
  auto it = label_index_.find(l);
  if (it == label_index_.end()) return nullptr;
  return &per_label_[it->second];
}

size_t BasicRep::Extract(gpusim::Warp& w, VertexId v, Label l,
                         std::vector<VertexId>& out) const {
  const PerLabel* pl = Find(l);
  if (pl == nullptr) return 0;
  std::span<const uint64_t> off = w.LoadRange(pl->row_offsets, v, 2);
  size_t count = off[1] - off[0];
  if (count == 0) return 0;
  std::span<const VertexId> nbrs =
      w.LoadRange(pl->column_index, off[0], count);
  out.insert(out.end(), nbrs.begin(), nbrs.end());
  return count;
}

size_t BasicRep::NeighborCountUpperBound(gpusim::Warp& w, VertexId v,
                                         Label l) const {
  const PerLabel* pl = Find(l);
  if (pl == nullptr) return 0;
  std::span<const uint64_t> off = w.LoadRange(pl->row_offsets, v, 2);
  return off[1] - off[0];
}

size_t BasicRep::ExtractSlice(gpusim::Warp& w, VertexId v, Label l,
                              size_t begin, size_t end,
                              std::vector<VertexId>& out) const {
  const PerLabel* pl = Find(l);
  if (pl == nullptr) return 0;
  std::span<const uint64_t> off = w.LoadRange(pl->row_offsets, v, 2);
  size_t count = off[1] - off[0];
  end = std::min(end, count);
  if (begin >= end) return 0;
  std::span<const VertexId> nbrs =
      w.LoadRange(pl->column_index, off[0] + begin, end - begin);
  out.insert(out.end(), nbrs.begin(), nbrs.end());
  return end - begin;
}

size_t BasicRep::ExtractValueRange(gpusim::Warp& w, VertexId v, Label l,
                                   VertexId lo, VertexId hi,
                                   std::vector<VertexId>& out) const {
  const PerLabel* pl = Find(l);
  if (pl == nullptr) return 0;
  std::span<const uint64_t> off = w.LoadRange(pl->row_offsets, v, 2);
  if (off[0] == off[1]) return 0;
  size_t b = LowerBoundCharged(w, pl->column_index, off[0], off[1], lo);
  size_t e = UpperBoundCharged(w, pl->column_index, b, off[1], hi);
  if (b >= e) return 0;
  std::span<const VertexId> nbrs = w.LoadRange(pl->column_index, b, e - b);
  out.insert(out.end(), nbrs.begin(), nbrs.end());
  return e - b;
}

uint64_t BasicRep::device_bytes() const {
  uint64_t total = 0;
  for (const PerLabel& pl : per_label_) {
    total += pl.row_offsets.size() * sizeof(uint64_t) +
             pl.column_index.size() * sizeof(VertexId);
  }
  return total;
}

}  // namespace gsi
