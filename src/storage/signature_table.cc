#include "storage/signature_table.h"

#include "util/check.h"

namespace gsi {

SignatureTable SignatureTable::Build(gpusim::Device& dev, const Graph& g,
                                     int nbits, Layout layout) {
  SignatureTable t;
  t.num_vertices_ = g.num_vertices();
  t.nbits_ = nbits;
  t.words_per_sig_ = Signature::WordsFor(nbits);
  t.layout_ = layout;
  std::vector<uint32_t> data(t.num_vertices_ *
                             static_cast<size_t>(t.words_per_sig_));
  for (VertexId v = 0; v < t.num_vertices_; ++v) {
    Signature s = Signature::Encode(g, v, nbits);
    for (int w = 0; w < t.words_per_sig_; ++w) {
      uint64_t idx = (layout == Layout::kColumnMajor)
                         ? static_cast<uint64_t>(w) * t.num_vertices_ + v
                         : static_cast<uint64_t>(v) * t.words_per_sig_ + w;
      data[idx] = s.word(w);
    }
  }
  t.data_ = dev.Upload(std::move(data));
  return t;
}

SignatureTable SignatureTable::BuildSubset(gpusim::Device& dev,
                                           const Graph& g,
                                           std::span<const VertexId> vertices,
                                           int nbits, Layout layout) {
  SignatureTable t;
  t.num_vertices_ = vertices.size();
  t.nbits_ = nbits;
  t.words_per_sig_ = Signature::WordsFor(nbits);
  t.layout_ = layout;
  std::vector<uint32_t> data(t.num_vertices_ *
                             static_cast<size_t>(t.words_per_sig_));
  for (size_t i = 0; i < vertices.size(); ++i) {
    Signature s = Signature::Encode(g, vertices[i], nbits);
    for (int w = 0; w < t.words_per_sig_; ++w) {
      data[t.IndexOf(static_cast<VertexId>(i), w)] = s.word(w);
    }
  }
  t.data_ = dev.Upload(std::move(data));
  return t;
}

void SignatureTable::WarpReadWord(gpusim::Warp& w, VertexId v0, size_t lanes,
                                  int word, uint32_t* out) const {
  GSI_CHECK(lanes <= static_cast<size_t>(gpusim::kWarpSize));
  GSI_CHECK(v0 + lanes <= num_vertices_);
  uint64_t idx[gpusim::kWarpSize];
  for (size_t k = 0; k < lanes; ++k) {
    idx[k] = IndexOf(v0 + static_cast<VertexId>(k), word);
  }
  w.Gather(data_, std::span<const uint64_t>(idx, lanes),
           std::span<uint32_t>(out, lanes));
}

}  // namespace gsi
