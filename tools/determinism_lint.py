#!/usr/bin/env python3
"""Determinism lint for the GSI execution path.

Every distributed execution mode (sharded, partitioned, replicated) must
stay bit-identical to single-device GsiMatcher::Find — the ROADMAP
invariant the integration tests assert. This lint statically bans the
constructs that historically break that property *before* they reach a
test: iteration order of unordered containers, pointer-keyed ordered
containers (address order varies run to run), wall-clock / random seeds on
the execution path, and floating-point accumulation in orders that can
vary across merges.

Rules (category `determinism`):
  unordered-iteration      range-for / .begin() traversal of a
                           std::unordered_{map,set,multimap,multiset}:
                           bucket order depends on hash seeding, insertion
                           history and libstdc++ version.
  pointer-keyed-container  std::{map,set} (or unordered) keyed by a raw
                           pointer: iteration (or bucket) order follows
                           allocator addresses, which change run to run.
  nondeterministic-seed    std::random_device, rand/srand, time(...),
                           steady_clock/system_clock/high_resolution_clock:
                           values that differ per run must never feed
                           match results (observability-only uses get a
                           NOLINT with a justification).
  float-accumulation       += / -= on a float/double inside iteration over
                           an unordered container: FP addition is not
                           associative, so a hash-order reduction changes
                           the result bit pattern.
  raw-clock                any direct std::chrono use (scoped to src/gsi
                           and src/gpusim): execution-path timestamps must
                           go through obs::Clock (obs/clock.h), whose
                           cycle-clock implementation keeps exported
                           traces bit-stable. Broader than
                           nondeterministic-seed — it also catches
                           duration arithmetic that invites a later
                           ::now() call.

Escapes: append `// NOLINT(determinism)` (or
`// NOLINT(determinism:<rule>)`) to the offending line, or put
`// NOLINTNEXTLINE(determinism)` on the line above — with a comment saying
*why* the order/time cannot reach match results.

Baseline: findings listed in tools/determinism_baseline.txt (fingerprint:
path|rule|normalized source line) are grandfathered; the lint fails only
on findings beyond the baselined count, so CI gates on *new* violations
immediately. Regenerate with --write-baseline after an audited change.

Engine: a regex pass is the default and the one CI runs everywhere. When
the libclang Python bindings are importable, --engine=clang upgrades
range-for analysis to real type lookups (fewer false negatives through
typedefs); --engine=auto picks clang when available. Both engines share
the same rule names, escapes and baseline format.

Usage:
  tools/determinism_lint.py                    # lint default roots
  tools/determinism_lint.py src/gsi/join.cc    # explicit files/dirs
  tools/determinism_lint.py --list             # print all findings,
                                               # ignoring the baseline
  tools/determinism_lint.py --write-baseline   # regenerate the baseline
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_ROOTS = ["src/gsi", "src/gpusim", "src/service"]
# Per-rule path scoping: a rule listed here only fires on files whose
# repo-relative path starts with one of the prefixes. The lint_fixtures
# prefix keeps the rule testable by the self-test.
RULE_SCOPES = {
    "raw-clock": ("src/gsi/", "src/gpusim/", "tests/lint_fixtures/raw_clock/"),
}
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "tools",
                                "determinism_baseline.txt")
SOURCE_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp", ".cu", ".cuh")

UNORDERED_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<")
SEED_TOKEN_RE = re.compile(
    r"std::random_device|\brandom_device\b|\bsrand\s*\(|[^\w.]rand\s*\(|"
    r"\btime\s*\(\s*(?:0|NULL|nullptr)\s*\)|\bsteady_clock\b|"
    r"\bsystem_clock\b|\bhigh_resolution_clock\b|[^\w.]clock\s*\(\s*\)")
RAW_CLOCK_RE = re.compile(r"#\s*include\s*<chrono>|\bstd::chrono\b")
POINTER_KEY_RE = re.compile(
    r"\b(?:std::)?(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*(?:\([^()]*\)[^;()]*)*)\)")
FLOAT_DECL_RE = re.compile(r"\b(?:float|double)\s+(\w+)\s*[={;,)]")
FLOAT_ACCUM_RE = re.compile(r"\b([\w.\[\]>-]+)\s*[+\-]\s*=")
NOLINT_RE = re.compile(r"//\s*NOLINT\(determinism(?::([\w-]+))?\)")
NOLINTNEXT_RE = re.compile(r"//\s*NOLINTNEXTLINE\(determinism(?::([\w-]+))?\)")


class Finding:
    def __init__(self, path, line, rule, message, source_line):
        self.path = path          # repo-relative, forward slashes
        self.line = line          # 1-based
        self.rule = rule
        self.message = message
        self.source_line = source_line

    def fingerprint(self):
        normalized = " ".join(self.source_line.split())
        return "%s|%s|%s" % (self.path, self.rule, normalized)

    def render(self):
        return "%s:%d: [determinism:%s] %s\n    %s" % (
            self.path, self.line, self.rule, self.message,
            self.source_line.strip())


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure
    (and the NOLINT markers, which the caller reads from the raw lines)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.extend(ch if ch == "\n" else " " for ch in text[i:j])
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote)
            out.extend(" " * (j - i - 2) if j - i >= 2 else "")
            out.append(quote if j - i >= 2 else "")
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def balanced_template_end(text, open_idx):
    """Index just past the `>` matching the `<` at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def collect_unordered_names(code):
    """Names declared (variables, members, parameters) with an unordered
    container type anywhere in the file. File-scope tracking is enough: the
    lint runs per translation unit and over headers independently."""
    names = set()
    for m in UNORDERED_RE.finditer(code):
        open_idx = code.find("<", m.start())
        end = balanced_template_end(code, open_idx)
        if end == -1:
            continue
        tail = code[end:end + 160]
        # `>> name` means this unordered type was nested inside another
        # template (e.g. vector<unordered_map<...>>) — the declared name is
        # not itself unordered.
        decl = re.match(r"\s*[&*]?\s*(\w+)\s*[;,)=({\[]", tail)
        if decl and not tail.lstrip().startswith(">"):
            name = decl.group(1)
            if name not in ("const", "return"):
                names.add(name)
    return names


def line_of(code, idx):
    return code.count("\n", 0, idx) + 1


def loop_body_span(code, loop_header_end):
    """(start, end) indices of the loop body starting at/after the header's
    closing paren: a braced block or a single statement."""
    i = loop_header_end
    while i < len(code) and code[i].isspace():
        i += 1
    if i < len(code) and code[i] == "{":
        depth = 0
        for j in range(i, len(code)):
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    return i, j + 1
        return i, len(code)
    j = code.find(";", i)
    return i, (len(code) if j == -1 else j + 1)


def scan_file_regex(path, rel, raw):
    code = strip_comments_and_strings(raw)
    lines = raw.splitlines()
    code_lines = code.splitlines()
    findings = []

    def add(lineno, rule, message):
        src = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        findings.append(Finding(rel, lineno, rule, message, src))

    unordered = collect_unordered_names(code)

    # --- pointer-keyed-container: declarations keyed by a raw pointer.
    for m in POINTER_KEY_RE.finditer(code):
        add(line_of(code, m.start()), "pointer-keyed-container",
            "associative container keyed by a raw pointer iterates in "
            "allocation-address order, which varies run to run")

    # --- nondeterministic-seed: per-run values on the execution path.
    for m in SEED_TOKEN_RE.finditer(code):
        add(line_of(code, m.start()), "nondeterministic-seed",
            "per-run value (clock / random seed) on the execution path; "
            "results derived from it cannot be reproduced")

    # --- raw-clock: direct std::chrono in the kernel-path directories.
    if rel.startswith(RULE_SCOPES["raw-clock"]):
        for m in RAW_CLOCK_RE.finditer(code):
            add(line_of(code, m.start()), "raw-clock",
                "direct std::chrono use on the execution path; take "
                "timestamps through obs::Clock (obs/clock.h) so traces "
                "stay bit-stable")

    # --- unordered-iteration (+ float-accumulation inside such loops).
    for m in RANGE_FOR_RE.finditer(code):
        header = m.group(1)
        if ":" not in header:
            continue  # classic for(;;) — indices have a defined order
        seq = header.rsplit(":", 1)[1]
        iterates_unordered = "unordered_" in seq or any(
            re.search(r"\b%s\b" % re.escape(name), seq)
            for name in unordered)
        if not iterates_unordered:
            continue
        add(line_of(code, m.start()), "unordered-iteration",
            "iteration order of an unordered container depends on hash "
            "seeding and insertion history")
        body_start, body_end = loop_body_span(code, m.end())
        float_names = set(FLOAT_DECL_RE.findall(code))
        for fm in FLOAT_ACCUM_RE.finditer(code, body_start, body_end):
            target = fm.group(1)
            base = re.split(r"[.\[>]", target)[0]
            if base in float_names or target in float_names:
                add(line_of(code, fm.start()), "float-accumulation",
                    "floating-point accumulation in unordered iteration "
                    "order changes the result bit pattern")

    # --- explicit iterator traversal of unordered containers.
    for name in unordered:
        for bm in re.finditer(r"\b%s\s*\.\s*c?begin\s*\(" % re.escape(name),
                              code):
            add(line_of(code, bm.start()), "unordered-iteration",
                "iterator traversal of an unordered container visits "
                "elements in hash order")

    return suppress_nolint(findings, lines)


def suppress_nolint(findings, lines):
    kept = []
    for f in findings:
        suppressed = False
        line = lines[f.line - 1] if f.line - 1 < len(lines) else ""
        m = NOLINT_RE.search(line)
        if m and m.group(1) in (None, f.rule):
            suppressed = True
        if not suppressed and f.line >= 2:
            m = NOLINTNEXT_RE.search(lines[f.line - 2])
            if m and m.group(1) in (None, f.rule):
                suppressed = True
        if not suppressed:
            kept.append(f)
    return kept


def scan_file_clang(path, rel, raw, index):
    """libclang pass: resolves the *type* of every range-for sequence, so
    typedef'd/auto'd unordered containers are caught too. Falls back to the
    regex engine's findings for the token-based rules."""
    from clang import cindex  # caller verified importability

    findings = scan_file_regex(path, rel, raw)
    seen = {(f.line, f.rule) for f in findings}
    try:
        tu = index.parse(path, args=["-std=c++20",
                                     "-I" + os.path.join(REPO_ROOT, "src")])
    except cindex.TranslationUnitLoadError:
        return findings
    lines = raw.splitlines()

    def walk(cursor):
        for child in cursor.get_children():
            if child.location.file and \
                    os.path.abspath(str(child.location.file)) != \
                    os.path.abspath(path):
                continue
            if child.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(child.get_children())
                if children:
                    seq_type = children[-2].type.spelling if \
                        len(children) >= 2 else ""
                    if "unordered_" in seq_type:
                        lineno = child.location.line
                        if (lineno, "unordered-iteration") not in seen:
                            src = lines[lineno - 1] if \
                                lineno - 1 < len(lines) else ""
                            findings.append(Finding(
                                rel, lineno, "unordered-iteration",
                                "range-for over %s visits elements in "
                                "hash order" % seq_type, src))
            walk(child)

    walk(tu.cursor)
    return suppress_nolint(findings, lines)


def gather_sources(paths):
    files = []
    for p in paths:
        absolute = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isfile(absolute):
            files.append(absolute)
        else:
            for dirpath, _, names in sorted(os.walk(absolute)):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
    return files


def load_baseline(path):
    counts = {}
    if not os.path.isfile(path):
        return counts
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            counts[line] = counts.get(line, 0) + 1
    return counts


def main(argv):
    parser = argparse.ArgumentParser(
        description="determinism lint over the GSI execution path")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: %s)" %
                        " ".join(DEFAULT_ROOTS))
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline from current findings")
    parser.add_argument("--list", action="store_true",
                        help="print every finding, ignoring the baseline")
    parser.add_argument("--engine", choices=["auto", "regex", "clang"],
                        default="auto")
    args = parser.parse_args(argv)

    engine = args.engine
    index = None
    if engine in ("auto", "clang"):
        try:
            from clang import cindex
            index = cindex.Index.create()
            engine = "clang"
        except Exception:  # bindings or libclang.so missing
            if args.engine == "clang":
                print("determinism_lint: --engine=clang requested but "
                      "libclang is unavailable", file=sys.stderr)
                return 2
            engine = "regex"

    files = gather_sources(args.paths or DEFAULT_ROOTS)
    findings = []
    for path in files:
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        if engine == "clang":
            findings.extend(scan_file_clang(path, rel, raw, index))
        else:
            findings.extend(scan_file_regex(path, rel, raw))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as f:
            f.write("# determinism_lint baseline — grandfathered findings.\n"
                    "# One fingerprint (path|rule|normalized line) per "
                    "occurrence;\n"
                    "# regenerate with tools/determinism_lint.py "
                    "--write-baseline.\n")
            for finding in findings:
                f.write(finding.fingerprint() + "\n")
        print("determinism_lint: wrote %d finding(s) to %s" %
              (len(findings), os.path.relpath(args.baseline, REPO_ROOT)))
        return 0

    if args.list:
        for f in findings:
            print(f.render())
        print("determinism_lint: %d finding(s) (baseline ignored)" %
              len(findings))
        return 0

    baseline = load_baseline(args.baseline)
    fresh = []
    for f in findings:
        fp = f.fingerprint()
        if baseline.get(fp, 0) > 0:
            baseline[fp] -= 1
        else:
            fresh.append(f)
    if fresh:
        for f in fresh:
            print(f.render())
        print("\ndeterminism_lint: %d new finding(s) (%d baselined). "
              "Fix them, add a justified NOLINT(determinism), or — for an "
              "audited exception — regenerate the baseline." %
              (len(fresh), sum(load_baseline(args.baseline).values())))
        return 1
    print("determinism_lint: clean (%d finding(s), all baselined; "
          "engine=%s, %d file(s))" % (len(findings), engine, len(files)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
