#!/usr/bin/env python3
"""Perf-regression gate over bench --json records.

Compares two sets of BenchMain JSON reports (see docs/BENCHMARKS.md,
"--json record schema") keyed by (bench, config) and fails when a shared
key regresses:

  * qps drops by more than --max-qps-drop    (default 15%), or
  * p50 grows by more than --max-p50-growth  (default 10%).

p50 is the simulated-latency percentile, which is proportional to
simulated device cycles — so the p50 check is the simulated-cycle-growth
gate and is bit-stable across machines. qps is wall-clock for the
service/batch benches, so benches listed in --warn-benches (default:
service_throughput, whose qps is pure host wall time on a shared CI
runner) only warn instead of failing.

Keys present on one side only are reported but never fail the gate: new
benches appear and old configs retire as the repo grows. Baseline records
with qps == 0 (or p50 == 0 for the growth check) are skipped — there is
no meaningful ratio against zero.

Usage:
  tools/bench_diff.py <baseline> <current> [options]
      <baseline>/<current>: a .json report or a directory searched
      recursively for *.json (a downloaded bench-json-<sha> artifact).
  tools/bench_diff.py --self-test
      Runs the embedded scenarios (registered with ctest as
      bench_diff_selftest).

Exit codes: 0 clean/soft-skip, 1 regression, 2 usage or unreadable input.
"""

import argparse
import json
import os
import sys


def load_records(path):
    """{(bench, config): record} from a report file or a directory tree.
    Later files win on duplicate keys (should not happen in one artifact)."""
    files = []
    if os.path.isfile(path):
        files = [path]
    else:
        for dirpath, _, names in sorted(os.walk(path)):
            for name in sorted(names):
                if name.endswith(".json"):
                    files.append(os.path.join(dirpath, name))
    records = {}
    for f in files:
        with open(f, encoding="utf-8") as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as e:
                raise SystemExit("bench_diff: %s is not valid JSON: %s" %
                                 (f, e))
        if not isinstance(data, list):
            raise SystemExit("bench_diff: %s is not a JSON array" % f)
        for rec in data:
            records[(rec["bench"], rec["config"])] = rec
    return records


def diff(baseline, current, max_qps_drop, max_p50_growth, warn_benches):
    """Returns (failures, warnings, lines) where lines is the full report."""
    failures, warnings, lines = [], [], []
    shared = sorted(set(baseline) & set(current))
    for key in sorted(set(baseline) - set(current)):
        lines.append("  gone:  %s / %s (baseline only — not gated)" % key)
    for key in sorted(set(current) - set(baseline)):
        lines.append("  new:   %s / %s (no baseline — not gated)" % key)
    for key in shared:
        old, new = baseline[key], current[key]
        label = "%s / %s" % key
        problems = []
        if old.get("qps", 0) > 0:
            drop = 1.0 - new.get("qps", 0) / old["qps"]
            if drop > max_qps_drop:
                problems.append("qps %.3g -> %.3g (-%.1f%% > %.0f%%)" % (
                    old["qps"], new.get("qps", 0), 100 * drop,
                    100 * max_qps_drop))
        if old.get("p50", 0) > 0:
            growth = new.get("p50", 0) / old["p50"] - 1.0
            if growth > max_p50_growth:
                problems.append(
                    "p50 %.3g -> %.3g ms (+%.1f%% > %.0f%% simulated)" % (
                        old["p50"], new.get("p50", 0), 100 * growth,
                        100 * max_p50_growth))
        if not problems:
            lines.append("  ok:    %s" % label)
        elif key[0] in warn_benches:
            warnings.append(label)
            lines.append("  WARN:  %s: %s (wall-clock bench — not gated)" %
                         (label, "; ".join(problems)))
        else:
            failures.append(label)
            lines.append("  FAIL:  %s: %s" % (label, "; ".join(problems)))
    return failures, warnings, lines


def self_test():
    import tempfile

    def write(dirname, name, records):
        with open(os.path.join(dirname, name), "w", encoding="utf-8") as f:
            json.dump(records, f)

    def run(base_recs, cur_recs, **kwargs):
        with tempfile.TemporaryDirectory() as tmp:
            old_dir = os.path.join(tmp, "old")
            new_dir = os.path.join(tmp, "new")
            os.makedirs(old_dir)
            os.makedirs(new_dir)
            write(old_dir, "a.json", base_recs)
            write(new_dir, "a.json", cur_recs)
            return diff(load_records(old_dir), load_records(new_dir),
                        kwargs.get("max_qps_drop", 0.15),
                        kwargs.get("max_p50_growth", 0.10),
                        kwargs.get("warn_benches", frozenset()))

    failures = []

    def check(cond, msg):
        print(("ok:   " if cond else "FAIL: ") + msg)
        if not cond:
            failures.append(msg)

    rec = {"bench": "b", "config": "c", "qps": 100.0, "p50": 10.0,
           "p99": 20.0}

    f, _, _ = run([rec], [dict(rec, qps=90.0, p50=10.5)])
    check(f == [], "10% qps drop / 5% p50 growth passes")

    f, _, _ = run([rec], [dict(rec, qps=80.0)])
    check(len(f) == 1, "20% qps drop fails")

    f, _, _ = run([rec], [dict(rec, p50=11.5)])
    check(len(f) == 1, "15% p50 growth fails")

    f, w, _ = run([rec], [dict(rec, qps=50.0)], warn_benches={"b"})
    check(f == [] and len(w) == 1, "warn-bench regression warns, not fails")

    f, _, lines = run([rec], [dict(rec, config="other")])
    check(f == [] and any("gone:" in l for l in lines) and
          any("new:" in l for l in lines),
          "one-sided keys are reported but never gated")

    f, _, _ = run([dict(rec, qps=0.0, p50=0.0)], [dict(rec, qps=1.0)])
    check(f == [], "zero baseline values are skipped")

    f, _, _ = run([rec], [dict(rec, qps=200.0, p50=5.0)])
    check(f == [], "improvements pass")

    if failures:
        print("\n%d check(s) failed" % len(failures))
        return 1
    print("\nall checks passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="compare two bench --json report sets")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--max-qps-drop", type=float, default=0.15,
                        help="fail above this fractional qps drop "
                        "(default 0.15)")
    parser.add_argument("--max-p50-growth", type=float, default=0.10,
                        help="fail above this fractional p50 (simulated "
                        "cycle) growth (default 0.10)")
    parser.add_argument("--warn-benches", default="service_throughput",
                        help="comma-separated bench names that only warn "
                        "(wall-clock-noisy)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current are required (or --self-test)")
    for p in (args.baseline, args.current):
        if not os.path.exists(p):
            print("bench_diff: %s does not exist" % p, file=sys.stderr)
            return 2

    baseline = load_records(args.baseline)
    current = load_records(args.current)
    if not baseline:
        print("bench_diff: baseline has no records — nothing to gate")
        return 0
    warn_benches = frozenset(
        b for b in args.warn_benches.split(",") if b)
    failures, warnings, lines = diff(baseline, current, args.max_qps_drop,
                                     args.max_p50_growth, warn_benches)
    print("bench_diff: %d baseline / %d current record(s)" %
          (len(baseline), len(current)))
    for line in lines:
        print(line)
    if failures:
        print("\nbench_diff: %d regression(s) (thresholds: qps -%.0f%%, "
              "p50 +%.0f%%)" % (len(failures), 100 * args.max_qps_drop,
                                100 * args.max_p50_growth))
        return 1
    print("\nbench_diff: clean (%d compared, %d warning(s))" %
          (len(set(baseline) & set(current)), len(warnings)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
