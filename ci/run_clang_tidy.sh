#!/usr/bin/env bash
# clang-tidy gate over the execution path (.clang-tidy holds the check set).
#
# Runs clang-tidy on every translation unit under src/gsi, src/service and
# src/util against a compile_commands.json, and fails on any finding
# (WarningsAsErrors: '*' in .clang-tidy). Generates the compilation
# database itself if the build dir does not have one yet.
#
# Usage: ci/run_clang_tidy.sh [build-dir]
# Env:   CLANG_TIDY  explicit binary (default: clang-tidy, then the newest
#                    versioned clang-tidy-* on PATH)
#        TIDY_JOBS   parallel workers (default: nproc)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${BUILD_DIR:-build}}"
cd "$REPO_ROOT"

find_clang_tidy() {
  if [ -n "${CLANG_TIDY:-}" ]; then
    echo "$CLANG_TIDY"
    return
  fi
  if command -v clang-tidy >/dev/null 2>&1; then
    echo clang-tidy
    return
  fi
  # Distro packages often install only clang-tidy-<N>; take the newest.
  # compgen exits 1 on no match — don't let set -e turn that into a
  # silent abort before the "no clang-tidy" diagnostic below.
  { compgen -c clang-tidy- 2>/dev/null || true; } |
    sort -t- -k3 -n -u | tail -n1
}

TIDY="$(find_clang_tidy)"
if [ -z "$TIDY" ]; then
  echo "error: no clang-tidy on PATH (set CLANG_TIDY=...)" >&2
  exit 2
fi
echo "using: $("$TIDY" --version | head -n2 | tr '\n' ' ')"

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "generating $BUILD_DIR/compile_commands.json"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t SOURCES < <(find src/gsi src/service src/util -name '*.cc' | sort)
echo "checking ${#SOURCES[@]} translation units"

JOBS="${TIDY_JOBS:-$(nproc)}"
STATUS=0
# xargs fan-out: each worker exits non-zero on findings; -P keeps CI wall
# time sane, and the per-file output stays readable because clang-tidy
# buffers per invocation.
printf '%s\n' "${SOURCES[@]}" |
  xargs -P "$JOBS" -n 1 "$TIDY" -p "$BUILD_DIR" --quiet || STATUS=$?

if [ "$STATUS" -ne 0 ]; then
  echo "clang-tidy: findings above must be fixed (or NOLINT'd with a" >&2
  echo "comment explaining why the pattern is safe here)" >&2
  exit 1
fi
echo "clang-tidy: clean"
