#!/usr/bin/env bash
# CI smoke driver: runs the example binaries and bench smokes that used to
# be hand-rolled workflow steps, one named smoke per invocation (or `all`).
# Bench smokes run at GSI_BENCH_SCALE=1 with tiny query counts — they
# exercise the end-to-end paths, not produce paper-scale numbers — and
# every `--json` record lands in $ARTIFACTS_DIR so the workflow can upload
# the full set as one artifact (the cross-run perf trajectory).
#
# Usage: ci/smoke.sh [all | sanitizer | <smoke> ...]
# Env:   BUILD_DIR (default: build), ARTIFACTS_DIR (default: bench-artifacts)
#
# `sanitizer` selects the subset the TSan/ASan CI legs run: one end-to-end
# smoke per concurrency shape (async service, pool fan-out, replica lanes)
# plus the two benches that stress Acquire*/Release wakeups, sized so an
# instrumented build finishes in minutes.

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
ARTIFACTS_DIR="${ARTIFACTS_DIR:-bench-artifacts}"
mkdir -p "$ARTIFACTS_DIR"

ALL_SMOKES=(
  example-query-service
  example-sharded
  example-partitioned
  example-replicated
  example-replicated-chaos
  example-trace
  example-streaming
  bench-service
  bench-service-faults
  bench-service-paged
  bench-sharding
  bench-partition
  bench-replication
  bench-halo
)

# The sanitizer subset now carries every bench smoke (ROADMAP: bench smokes
# under the TSan leg) plus the chaos smoke — fault injection, quarantine and
# retry wakeups are exactly the cross-thread traffic TSan should watch.
SANITIZER_SMOKES=(
  example-query-service
  example-sharded
  example-replicated
  example-replicated-chaos
  example-streaming
  bench-service
  bench-service-faults
  bench-service-paged
  bench-sharding
  bench-partition
  bench-replication
  bench-halo
)

run_bench() {
  # run_bench <binary> <json-name> [ENV=VAL ...]
  local binary="$1" json="$2"
  shift 2
  echo "::group::bench $binary"
  env GSI_BENCH_SCALE=1 GSI_BENCH_QUERIES=3 "$@" \
    "$BUILD_DIR/bench/$binary" --json "$ARTIFACTS_DIR/$json"
  cat "$ARTIFACTS_DIR/$json"
  echo
  echo "::endgroup::"
}

run_smoke() {
  case "$1" in
    # Exercise the async serving paths end-to-end (submit/poll, admission
    # control, deadlines, filter cache) outside the unit-test harness.
    example-query-service)
      GSI_SERVICE_VERTICES=1000 GSI_SERVICE_QUERIES=160 \
        "$BUILD_DIR/examples/query_service"
      ;;
    # Multi-device fan-out over the shared pool.
    example-sharded)
      GSI_SHARD_EXAMPLE_SCALE=1 GSI_SHARD_EXAMPLE_DEVICES=4 \
        "$BUILD_DIR/examples/sharded_query"
      ;;
    # Halo-exchange execution over the 1/K-per-device data graph.
    example-partitioned)
      GSI_PARTITION_EXAMPLE_SCALE=1 GSI_PARTITION_EXAMPLE_PARTITIONS=4 \
        "$BUILD_DIR/examples/partitioned_query"
      ;;
    # R-way replicated partitions: concurrent lanes + replica routing.
    example-replicated)
      GSI_REPL_EXAMPLE_SCALE=1 GSI_REPL_EXAMPLE_REPLICAS=2 \
        "$BUILD_DIR/examples/replicated_query"
      ;;
    # Chaos smoke: kill a pool device mid-burst; the burst must finish with
    # every result bit-identical (the example asserts quarantine, failover
    # and zero lost queries itself).
    example-replicated-chaos)
      GSI_REPL_EXAMPLE_SCALE=1 GSI_REPL_EXAMPLE_REPLICAS=2 \
        "$BUILD_DIR/examples/replicated_query" --kill-device
      ;;
    # End-to-end tracing: the example submits a traced query through the
    # replicated service path and writes Chrome trace JSON; validate that
    # the export parses and carries the load-bearing span names.
    example-trace)
      "$BUILD_DIR/examples/trace_query" "$ARTIFACTS_DIR/trace_query.json"
      python3 - "$ARTIFACTS_DIR/trace_query.json" <<'PYEOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
names = {e.get("name") for e in events if e.get("ph") == "X"}
missing = {"queue_wait", "query", "filter", "result_merge"} - names
assert not missing, "trace missing spans: %s (got %s)" % (missing, names)
assert any(n in names for n in ("lane", "partition_join", "join_step")), \
    "trace has no per-lane join spans: %s" % names
print("trace JSON ok: %d events, %d distinct spans" % (len(events),
                                                       len(names)))
PYEOF
      ;;
    # Paged result cursors end-to-end: stream a ~100K-match result through
    # Submit -> FetchPage under a 4 KiB host budget; the example itself
    # asserts every page fits the budget and the concatenation is
    # byte-identical to a one-shot Wait.
    example-streaming)
      GSI_STREAM_VERTICES=800 GSI_STREAM_BUDGET=4096 \
        "$BUILD_DIR/examples/streaming_results"
      ;;
    bench-service)
      run_bench bench_service_throughput bench_service.json \
        GSI_BENCH_QUERIES=5
      ;;
    # Fault sweep: one injected device failure per four queries; the JSON
    # record carries availability and the simulated retry overhead.
    bench-service-faults)
      echo "::group::bench bench_service_throughput --fault-rate"
      env GSI_BENCH_SCALE=1 GSI_BENCH_QUERIES=3 \
        "$BUILD_DIR/bench/bench_service_throughput" \
        --fault-rate 0.25 --benchmark_filter=faulted \
        --json "$ARTIFACTS_DIR/bench_service_faults.json"
      cat "$ARTIFACTS_DIR/bench_service_faults.json"
      echo
      python3 - "$ARTIFACTS_DIR/bench_service_faults.json" <<'PYEOF'
import json, sys
recs = [r for r in json.load(open(sys.argv[1])) if r["config"] == "faulted"]
assert recs, "no faulted record in --json output"
r = recs[0]
assert r["availability"] == 1.0, "queries lost under injected faults: %s" % r
assert r["retries"] >= r["injected_faults"] > 0, "faults did not trip: %s" % r
assert r["retry_overhead_ms"] > 0, "retry backoff missing: %s" % r
print("fault smoke ok: availability %.3f over %d faults, %.2f ms overhead"
      % (r["availability"], int(r["injected_faults"]), r["retry_overhead_ms"]))
PYEOF
      echo "::endgroup::"
      ;;
    # Paged-cursor leg: every result streamed through FetchPage under a
    # 256-byte page budget (small enough that multi-row results split into
    # several pages at smoke scale). The JSON assertion pins the acceptance
    # bar: page concatenation bit-identical to one-shot RunBatch, pages
    # actually fetched, and no page ever exceeding the host budget.
    bench-service-paged)
      echo "::group::bench bench_service_throughput --page-budget"
      env GSI_BENCH_SCALE=1 GSI_BENCH_QUERIES=3 \
        "$BUILD_DIR/bench/bench_service_throughput" \
        --page-budget 256 --benchmark_filter=paged \
        --json "$ARTIFACTS_DIR/bench_service_paged.json"
      cat "$ARTIFACTS_DIR/bench_service_paged.json"
      echo
      python3 - "$ARTIFACTS_DIR/bench_service_paged.json" <<'PYEOF'
import json, sys
recs = [r for r in json.load(open(sys.argv[1])) if r["config"] == "paged"]
assert recs, "no paged record in --json output"
r = recs[0]
assert r["paged_bit_identical"] == 1.0, "page concat diverged: %s" % r
assert r["pages_fetched"] > 0, "no pages fetched: %s" % r
assert r["peak_page_bytes"] <= max(r["page_budget_bytes"], 64), \
    "a page exceeded the host budget: %s" % r
print("paged smoke ok: %d pages, peak page %d B <= %d B budget, "
      "%.6f MB peak resident, bit-identical"
      % (int(r["pages_fetched"]), int(r["peak_page_bytes"]),
         int(r["page_budget_bytes"]), r["peak_result_resident_mb"]))
PYEOF
      echo "::endgroup::"
      ;;
    # 2-device fan-out exercises the device-pool path end-to-end.
    bench-sharding)
      run_bench bench_sharding_scalability bench_sharding.json \
        GSI_BENCH_DEVICES="1 2"
      ;;
    # K=2 exercises the halo-exchange path and the memory-per-device
    # reduction accounting.
    bench-partition)
      run_bench bench_partition_scalability bench_partition.json \
        GSI_BENCH_PARTITIONS="1 2"
      ;;
    # R=2 at K=4 exercises AcquireOneOfEach lanes, replica routing and the
    # bit-identical check against single-device execution.
    bench-replication)
      run_bench bench_replication_scalability bench_replication.json \
        GSI_BENCH_REPLICAS="1 2" GSI_BENCH_REPL_QUERIES=4
      ;;
    # Halo-cache leg: K=4 partitioned bench with a deliberately tiny
    # per-device budget (small enough to force LRU evictions at smoke
    # scale). The bench itself GSI_CHECKs the cached tables bit-identical;
    # the JSON assertion pins the cache actually engaging — hit rate > 0,
    # remote transactions saved, residency within budget.
    bench-halo)
      run_bench bench_partition_scalability bench_halo.json \
        GSI_BENCH_PARTITIONS="4" GSI_BENCH_HALO_BUDGET=4096
      python3 - "$ARTIFACTS_DIR/bench_halo.json" <<'PYEOF'
import json, sys
recs = [r for r in json.load(open(sys.argv[1]))
        if "halo_cache_hit_rate" in r]
assert recs, "no halo-cache leg in --json output"
r = recs[0]
assert r["halo_bit_identical"] == 1.0, "cached table diverged: %s" % r
assert r["halo_cache_hit_rate"] > 0, "halo cache never hit: %s" % r
assert r["saved_remote_transactions"] > 0, \
    "warm run saved no remote transactions: %s" % r
assert r["halo_cache_mb_per_device"] * 1024 * 1024 <= 4096, \
    "halo cache exceeded its budget: %s" % r
print("halo smoke ok: hit rate %.2f, %d remote transactions saved, "
      "%.1f KB resident"
      % (r["halo_cache_hit_rate"], int(r["saved_remote_transactions"]),
         r["halo_cache_mb_per_device"] * 1024))
PYEOF
      ;;
    *)
      echo "unknown smoke: $1" >&2
      echo "known: all sanitizer ${ALL_SMOKES[*]}" >&2
      exit 2
      ;;
  esac
}

if [ "$#" -eq 0 ] || [ "$1" = "all" ]; then
  set -- "${ALL_SMOKES[@]}"
elif [ "$1" = "sanitizer" ]; then
  set -- "${SANITIZER_SMOKES[@]}"
fi
for smoke in "$@"; do
  echo "=== smoke: $smoke"
  run_smoke "$smoke"
done
